package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"ertree/internal/randtree"
	"ertree/internal/telemetry"
	"ertree/internal/tt"
)

// TestTelemetryRecordsSessions: an engine wired to a Telemetry exposes the
// session, latency, and core-search families with the engine's game label
// after a completed analysis.
func TestTelemetryRecordsSessions(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg)
	// Pinned to the er backend: the asserted families (serial tasks, heap
	// ops) only exist on the ER scheduler, so this test must not float with
	// ERTREE_BACKEND.
	e := New(Config{
		Name: "randtree", Workers: 2, SerialDepth: 2, TableBits: 12,
		Backend: "er", Telemetry: tel,
	})
	tr := &randtree.Tree{Seed: 7, Degree: 4, Depth: 6, ValueRange: 1000}
	if _, err := e.Analyze(context.Background(), tr.Root(), 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`engine_sessions_total{game="randtree",outcome="completed"} 1`,
		`engine_session_duration_seconds_count{game="randtree",outcome="completed"} 1`,
		`engine_session_depth_count{game="randtree"} 1`,
		`core_tasks_total{game="randtree",kind="serial"}`,
		`core_tt_ops_total{game="randtree",op="probe"}`,
		`core_tt_fill_slots{game="randtree"}`,
		`core_tt_hit_rate{game="randtree"}`,
		`core_tt_generation{game="randtree"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	st := e.Stats()
	if st.SerialTasks == 0 || st.HeapOps == 0 {
		t.Fatalf("core aggregates not folded into Stats: %+v", st)
	}
	if st.TTProbes == 0 || st.TTStores == 0 {
		t.Fatalf("tt aggregates not folded into Stats: %+v", st)
	}
}

// TestTelemetryNilIsSafe: a nil *Telemetry disables recording without
// changing engine behavior.
func TestTelemetryNilIsSafe(t *testing.T) {
	e := New(Config{Workers: 1})
	tr := &randtree.Tree{Seed: 3, Degree: 3, Depth: 5, ValueRange: 100}
	if _, err := e.Analyze(context.Background(), tr.Root(), 4); err != nil {
		t.Fatal(err)
	}
	var tel *Telemetry
	tel.recordSession("x", outcomeCompleted, time.Second, 3, 0, 10)
	tel.recordRejection("x")
	tel.recordCore("x", &coreTotals{serialTasks: 1})
	tel.recordTable("x", tt.NewDefault(8, 0))
}

// TestAnalyzeTraceCollectsWorkerSpans: a traced session returns merged
// per-worker telemetry that WriteWorkerTrace renders as a valid Chrome
// trace_event JSON array with one named track per worker.
func TestAnalyzeTraceCollectsWorkerSpans(t *testing.T) {
	// Worker spans come from core hooks, which only the er backend arms.
	e := New(Config{Name: "randtree", Workers: 3, SerialDepth: 2, Backend: "er"})
	tr := &randtree.Tree{Seed: 17, Degree: 4, Depth: 6, ValueRange: 1000}
	an, err := e.AnalyzeTrace(context.Background(), tr.Root(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Trace) == 0 {
		t.Fatal("traced analysis returned no worker telemetry")
	}
	if len(an.Trace) > 3 {
		t.Fatalf("%d worker tracks for 3 workers", len(an.Trace))
	}
	var spans int
	for i, wt := range an.Trace {
		if i > 0 && an.Trace[i-1].Worker >= wt.Worker {
			t.Fatalf("tracks not ordered by worker id: %d then %d", an.Trace[i-1].Worker, wt.Worker)
		}
		spans += len(wt.Spans)
		// Deepening iterations share the session epoch, so merged spans must
		// stay on one axis: all offsets non-negative and within the session.
		for _, sp := range wt.Spans {
			if sp.Start < 0 || sp.End < sp.Start {
				t.Fatalf("worker %d span off the session axis: %+v", wt.Worker, sp)
			}
		}
	}
	if spans == 0 {
		t.Fatal("no spans collected across the session")
	}

	var buf bytes.Buffer
	if err := WriteWorkerTrace(&buf, "engine test", an.Trace); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	names := 0
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			names++
		}
	}
	if names != len(an.Trace) {
		t.Fatalf("%d thread_name records for %d tracks", names, len(an.Trace))
	}

	// The untraced path must not populate Trace.
	an2, err := e.Analyze(context.Background(), tr.Root(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if an2.Trace != nil {
		t.Fatal("Analyze populated Trace without tracing enabled")
	}
}

// TestStatsConcurrentSessions races many sessions — including rejected
// admissions — against Stats readers and checks the final counters balance.
// Run under -race this also proves the counters are data-race free.
func TestStatsConcurrentSessions(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{
		Name: "randtree", Workers: 2, SerialDepth: 2, TableBits: 10,
		MaxConcurrent: 2, Telemetry: NewTelemetry(reg),
	})
	tr := &randtree.Tree{Seed: 23, Degree: 4, Depth: 6, ValueRange: 1000}
	root := tr.Root()

	const sessions = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount, rejected := 0, 0
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent Stats reader, stopped once the sessions drain
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := e.Stats()
				if s.Active < 0 || s.Active > s.Capacity || s.Waiting < 0 {
					t.Errorf("inconsistent live stats: %+v", s)
					return
				}
			}
		}
	}()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Analyze(context.Background(), root, 4)
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				okCount++
			case ErrBusy:
				rejected++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	st := e.Stats()
	if st.Started != int64(okCount) || st.Completed != int64(okCount) {
		t.Fatalf("started %d completed %d, want %d each", st.Started, st.Completed, okCount)
	}
	if st.Rejected != int64(rejected) {
		t.Fatalf("rejected counter %d, callers saw %d", st.Rejected, rejected)
	}
	if st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("sessions drained but Active=%d Waiting=%d", st.Active, st.Waiting)
	}
	if okCount > 0 && (st.Nodes == 0 || st.SerialTasks+st.LeafTasks == 0) {
		t.Fatalf("work counters empty after %d sessions: %+v", okCount, st)
	}
	// Registry sessions by outcome must match the engine's own counters.
	var completedSamples, rejectedSamples float64
	for _, fam := range reg.Snapshot() {
		if fam.Name != "engine_sessions_total" {
			continue
		}
		for _, s := range fam.Samples {
			switch s.Labels["outcome"] {
			case "completed":
				completedSamples += s.Value
			case "rejected":
				rejectedSamples += s.Value
			}
		}
	}
	if int(completedSamples) != okCount || int(rejectedSamples) != rejected {
		t.Fatalf("registry saw %v completed / %v rejected, engine saw %d / %d",
			completedSamples, rejectedSamples, okCount, rejected)
	}
}
