package experiments

import (
	"fmt"

	"ertree/internal/baseline/aspiration"
	"ertree/internal/baseline/mwf"
	"ertree/internal/baseline/rootsplit"
	"ertree/internal/baseline/treesplit"
	"ertree/internal/checkers"
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/metrics"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

// The extension experiments implement the paper's §8 future work — "We are
// currently working on reimplementing some of the more important existing
// algorithms, which will allow direct comparison" — plus an ablation of §5's
// three speculative-work mechanisms.

// E0RootSplit measures the naive root-partitioning the paper's introduction
// dismisses: far more nodes than serial alpha-beta and low efficiency.
func E0RootSplit(w Workload, cost core.CostModel, workers []int) metrics.Series {
	base := Baseline(w, cost)
	s := metrics.Series{Name: "rootsplit/" + w.Name}
	for _, p := range workers {
		res := rootsplit.Search(w.Root, w.Depth, rootsplit.Options{Workers: p, Order: w.Order}, cost)
		if res.Value != base.Value {
			panic("experiments: root splitting disagrees with the serial value")
		}
		s.Points = append(s.Points, metrics.Point{
			Workers:    p,
			Speedup:    metrics.Speedup(base.Best(), res.Time),
			Efficiency: metrics.Efficiency(base.Best(), res.Time, p),
			Time:       res.Time,
			Nodes:      res.Nodes,
		})
	}
	return s
}

// E1Aspiration measures parallel aspiration search (§4.1) on a random-tree
// workload across processor counts. Expected shape: speedup rises with the
// first few processors and plateaus well below the processor count (Baudet
// observed a ceiling of 5-6).
func E1Aspiration(w Workload, cost core.CostModel, workers []int) metrics.Series {
	base := Baseline(w, cost)
	s := metrics.Series{Name: "aspiration/" + w.Name}
	for _, p := range workers {
		res := aspiration.Search(w.Root, w.Depth, aspiration.Options{
			Workers: p,
			Bound:   12000,
			Order:   w.Order,
		}, cost)
		if res.Value != base.Value {
			panic("experiments: aspiration disagrees with the serial value")
		}
		s.Points = append(s.Points, metrics.Point{
			Workers:    p,
			Speedup:    metrics.Speedup(base.Best(), res.ParallelTime),
			Efficiency: metrics.Efficiency(base.Best(), res.ParallelTime, p),
			Time:       res.ParallelTime,
			Nodes:      res.TotalNodes,
		})
	}
	return s
}

// E2MWF measures mandatory-work-first (§4.2) on Akl-style random trees.
// Expected shape: speedup plateaus near six; extra processors only starve.
func E2MWF(w Workload, cost core.CostModel, workers []int) metrics.Series {
	base := Baseline(w, cost)
	s := metrics.Series{Name: "mwf/" + w.Name}
	for _, p := range workers {
		res := mwf.Search(w.Root, w.Depth, mwf.Options{
			Workers:     p,
			SerialDepth: w.SerialDepth,
			Order:       w.Order,
		}, cost)
		if res.Value != base.Value {
			panic("experiments: MWF disagrees with the serial value")
		}
		s.Points = append(s.Points, metrics.Point{
			Workers:    p,
			Speedup:    metrics.Speedup(base.Best(), res.VirtualTime),
			Efficiency: metrics.Efficiency(base.Best(), res.VirtualTime, p),
			Time:       res.VirtualTime,
			Nodes:      res.Nodes,
		})
	}
	return s
}

// E3TreeSplit measures tree-splitting and pv-splitting (§4.3-4.4) on a
// strongly ordered tree for binary processor trees of increasing height.
// Expected shape: tree-splitting efficiency decays like 1/sqrt(k) on ordered
// trees; pv-splitting does better but still decays with processor count.
func E3TreeSplit(cost core.CostModel, heights []int) (ts, pv metrics.Series) {
	tree := randtree.Marsland(0xE3, 4, 8)
	order := game.StaticOrder{MaxPly: 5}
	w := Workload{Name: "S1", Kind: "strong", Root: tree.Root(), Depth: 8, Order: order}
	return e3On(w, cost, heights)
}

// E3TreeSplitCheckers repeats E3 on a real checkers search, mirroring the
// workload of Fishburn's original tree-splitting experiments (§4.4 cites
// his checkers results when assessing pv-splitting).
func E3TreeSplitCheckers(cost core.CostModel, heights []int) (ts, pv metrics.Series) {
	w := Workload{
		Name:  "CK",
		Kind:  "checkers",
		Root:  checkers.Start(),
		Depth: 9,
		Order: game.StaticOrder{MaxPly: 5},
	}
	return e3On(w, cost, heights)
}

func e3On(w Workload, cost core.CostModel, heights []int) (ts, pv metrics.Series) {
	base := Baseline(w, cost)
	ts = metrics.Series{Name: "ts/" + w.Name}
	pv = metrics.Series{Name: "pv/" + w.Name}
	for _, h := range heights {
		opt := treesplit.Options{Height: h, Fanout: 2, Order: w.Order}
		k := opt.Processors()
		r1 := treesplit.Search(w.Root, w.Depth, opt, cost)
		r2 := treesplit.PVSplit(w.Root, w.Depth, opt, cost)
		if r3 := treesplit.PVSplitMW(w.Root, w.Depth, opt, cost); r3.Value != base.Value {
			panic("experiments: pv-split-mw disagrees with the serial value")
		}
		if r1.Value != base.Value || r2.Value != base.Value {
			panic("experiments: splitting algorithms disagree with the serial value")
		}
		ts.Points = append(ts.Points, metrics.Point{
			Workers:    k,
			Speedup:    metrics.Speedup(base.Best(), r1.Time),
			Efficiency: metrics.Efficiency(base.Best(), r1.Time, k),
			Time:       r1.Time,
			Nodes:      r1.Nodes,
		})
		pv.Points = append(pv.Points, metrics.Point{
			Workers:    k,
			Speedup:    metrics.Speedup(base.Best(), r2.Time),
			Efficiency: metrics.Efficiency(base.Best(), r2.Time, k),
			Time:       r2.Time,
			Nodes:      r2.Nodes,
		})
	}
	return ts, pv
}

// AblationConfig names one §5 speculation configuration.
type AblationConfig struct {
	Name string
	Opt  core.Options
}

// AblationConfigs enumerates the A1 ablation: the full paper configuration,
// each mechanism removed in turn, and no speculation at all.
func AblationConfigs() []AblationConfig {
	full := core.DefaultOptions()
	noPR := full
	noPR.ParallelRefutation = false
	noMulti := full
	noMulti.MultipleENodes = false
	noEarly := full
	noEarly.EarlyChoice = false
	return []AblationConfig{
		{Name: "full", Opt: full},
		{Name: "-par-refute", Opt: noPR},
		{Name: "-multi-e", Opt: noMulti},
		{Name: "-early", Opt: noEarly},
		{Name: "none", Opt: core.Options{}},
	}
}

// A1Ablation measures each speculation configuration on a workload at the
// given processor count.
func A1Ablation(w Workload, workers int, cost core.CostModel) []metrics.Series {
	base := Baseline(w, cost)
	var out []metrics.Series
	for _, cfg := range AblationConfigs() {
		opt := cfg.Opt
		opt.Workers = workers
		opt.SerialDepth = w.SerialDepth
		opt.Order = w.Order
		res := mustSim(w.Root, w.Depth, opt, cost)
		if res.Value != base.Value {
			panic("experiments: ablated ER disagrees with the serial value")
		}
		out = append(out, metrics.Series{Name: cfg.Name, Points: []metrics.Point{{
			Workers:    workers,
			Speedup:    metrics.Speedup(base.Best(), res.VirtualTime),
			Efficiency: metrics.Efficiency(base.Best(), res.VirtualTime, workers),
			Time:       res.VirtualTime,
			Nodes:      res.Stats.Generated + res.Stats.Evaluated,
		}}})
	}
	return out
}

// A3SpecRank compares speculative-queue ranking policies (the paper's §8
// future work: "a better mechanism for globally ranking speculative work
// must be found") on a workload at the given processor count.
func A3SpecRank(w Workload, workers int, cost core.CostModel) []metrics.Series {
	base := Baseline(w, cost)
	var out []metrics.Series
	for _, rank := range []core.SpecRank{core.SpecRankPaper, core.SpecRankDepth, core.SpecRankBound} {
		opt := core.DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = w.SerialDepth
		opt.Order = w.Order
		opt.SpecRank = rank
		res := mustSim(w.Root, w.Depth, opt, cost)
		if res.Value != base.Value {
			panic("experiments: spec-rank variant disagrees with the serial value")
		}
		out = append(out, metrics.Series{Name: rank.String(), Points: []metrics.Point{{
			Workers:    workers,
			Speedup:    metrics.Speedup(base.Best(), res.VirtualTime),
			Efficiency: metrics.Efficiency(base.Best(), res.VirtualTime, workers),
			Time:       res.VirtualTime,
			Nodes:      res.Stats.Generated + res.Stats.Evaluated,
		}}})
	}
	return out
}

// A4Result reports the §7 open question: does serial ER still beat
// alpha-beta once alpha-beta skips sorting at critical 1- and 3-nodes?
type A4Result struct {
	Workload                                string
	AlphaBeta, AlphaBetaSelective, SerialER int64 // virtual costs
	SortEvalsFull, SortEvalsSelective       int64
}

// A4SelectiveSort measures plain sorted alpha-beta, selectively sorted
// alpha-beta, and serial ER on a workload.
func A4SelectiveSort(w Workload, cost core.CostModel) A4Result {
	var full, sel, er game.Stats
	sf := serial.Searcher{Order: w.Order, Stats: &full}
	v1 := sf.AlphaBeta(w.Root, w.Depth, game.FullWindow())
	ss := serial.Searcher{Order: w.Order, Stats: &sel}
	v2 := ss.AlphaBetaSelectiveSort(w.Root, w.Depth, game.FullWindow())
	se := serial.Searcher{Order: w.Order, Stats: &er}
	v3 := se.ER(w.Root, w.Depth, game.FullWindow())
	if v1 != v2 || v2 != v3 {
		panic(fmt.Sprintf("experiments: A4 algorithms disagree on %s: %d %d %d", w.Name, v1, v2, v3))
	}
	return A4Result{
		Workload:           w.Name,
		AlphaBeta:          cost.Of(full.Snapshot()),
		AlphaBetaSelective: cost.Of(sel.Snapshot()),
		SerialER:           cost.Of(er.Snapshot()),
		SortEvalsFull:      full.SortEvals.Load(),
		SortEvalsSelective: sel.SortEvals.Load(),
	}
}

// A6Point is one configuration in the eager-speculation study.
type A6Point struct {
	Name       string
	Time       int64
	Nodes      int64
	StarveTime int64
	SpecPops   int64
	Efficiency float64
}

// A6EagerSpec compares the paper's speculative-queue admission rule against
// the EagerSpec extension (admission after the first elder grandchild) at a
// fixed processor count.
func A6EagerSpec(w Workload, workers int, cost core.CostModel) []A6Point {
	base := Baseline(w, cost)
	var out []A6Point
	for _, eager := range []bool{false, true} {
		opt := core.DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = w.SerialDepth
		opt.Order = w.Order
		opt.EagerSpec = eager
		res := mustSim(w.Root, w.Depth, opt, cost)
		if res.Value != base.Value {
			panic("experiments: eager-spec variant disagrees with the serial value")
		}
		name := "paper"
		if eager {
			name = "eager"
		}
		out = append(out, A6Point{
			Name:       name,
			Time:       res.VirtualTime,
			Nodes:      res.Stats.Generated + res.Stats.Evaluated,
			StarveTime: res.StarveTime,
			SpecPops:   res.SpecPops,
			Efficiency: metrics.Efficiency(base.Best(), res.VirtualTime, workers),
		})
	}
	return out
}

// A5Point is one serial-depth setting in the grain-size study.
type A5Point struct {
	SerialDepth int
	Time        int64
	Nodes       int64
	StarveTime  int64
	LockTime    int64
	HeapOps     int64
}

// A5SerialDepth sweeps the serial depth at a fixed processor count,
// quantifying the paper's §7 remark: "It would be possible to reduce
// contention by decreasing the serial depth, but decreasing the depth would
// only increase starvation" — the grain-size tradeoff between heap/lock
// traffic and idle processors.
func A5SerialDepth(w Workload, workers int, cost core.CostModel, depths []int) []A5Point {
	base := Baseline(w, cost)
	var out []A5Point
	for _, sd := range depths {
		opt := core.DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = sd
		opt.Order = w.Order
		res := mustSim(w.Root, w.Depth, opt, cost)
		if res.Value != base.Value {
			panic("experiments: serial-depth variant disagrees with the serial value")
		}
		out = append(out, A5Point{
			SerialDepth: sd,
			Time:        res.VirtualTime,
			Nodes:       res.Stats.Generated + res.Stats.Evaluated,
			StarveTime:  res.StarveTime,
			LockTime:    res.LockTime,
			HeapOps:     res.HeapOps,
		})
	}
	return out
}

// AklWorkloads returns four-ply random game trees of various fixed degrees,
// the workloads of Akl et al.'s MWF simulations (§4.2), for experiment E2.
// On these, MWF's speedup plateaus near six past ~16 processors, matching
// the published observation.
func AklWorkloads() []Workload {
	return []Workload{
		{Name: "A16", Kind: "random", Root: (&randtree.Tree{Seed: 0xAA1, Degree: 16, Depth: 4, ValueRange: 10000}).Root(), Depth: 4, SerialDepth: 2},
		{Name: "A24", Kind: "random", Root: (&randtree.Tree{Seed: 0xAA2, Degree: 24, Depth: 4, ValueRange: 10000}).Root(), Depth: 4, SerialDepth: 2},
	}
}
