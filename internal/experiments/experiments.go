// Package experiments defines the paper's workloads (Table 3) and the
// runners that regenerate every figure of the evaluation plus the extension
// experiments E1-E3 and the ablation A1 (see DESIGN.md §5). It is shared by
// cmd/figures and the repository's benchmarks.
package experiments

import (
	"fmt"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/metrics"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

// Workload is one row of the paper's Table 3.
type Workload struct {
	Name        string
	Kind        string // "random" or "othello"
	Root        game.Position
	Depth       int
	SerialDepth int
	Order       game.Orderer
}

// Table3 returns the six experiment workloads exactly as the paper defines
// them: R1 (random, degree 4, 10 ply, serial depth 7), R2 (degree 4, 11
// ply, serial depth 7), R3 (degree 8, 7 ply, serial depth 5), and O1-O3
// (Othello, 7 ply, serial depth 5, static-sort ordering above ply 5).
func Table3() []Workload {
	othelloOrder := game.StaticOrder{MaxPly: 5}
	return []Workload{
		{Name: "R1", Kind: "random", Root: randtree.R1().Root(), Depth: 10, SerialDepth: 7},
		{Name: "R2", Kind: "random", Root: randtree.R2().Root(), Depth: 11, SerialDepth: 7},
		{Name: "R3", Kind: "random", Root: randtree.R3().Root(), Depth: 7, SerialDepth: 5},
		{Name: "O1", Kind: "othello", Root: othello.O1(), Depth: 7, SerialDepth: 5, Order: othelloOrder},
		{Name: "O2", Kind: "othello", Root: othello.O2(), Depth: 7, SerialDepth: 5, Order: othelloOrder},
		{Name: "O3", Kind: "othello", Root: othello.O3(), Depth: 7, SerialDepth: 5, Order: othelloOrder},
	}
}

// Small returns reduced-scale variants of the workloads (used by unit tests
// and quick benchmark runs): same structure, shallower searches.
func Small() []Workload {
	othelloOrder := game.StaticOrder{MaxPly: 5}
	return []Workload{
		{Name: "R1s", Kind: "random", Root: randtree.R1().Root(), Depth: 6, SerialDepth: 3},
		{Name: "R3s", Kind: "random", Root: randtree.R3().Root(), Depth: 4, SerialDepth: 2},
		{Name: "O1s", Kind: "othello", Root: othello.O1(), Depth: 4, SerialDepth: 2, Order: othelloOrder},
	}
}

// WorkerCounts is the processor axis of Figures 10-13.
var WorkerCounts = []int{1, 2, 4, 8, 12, 16}

// SerialBaseline reports the virtual cost and node count of the two serial
// reference algorithms on a workload.
type SerialBaseline struct {
	AlphaBetaTime, ERTime   int64
	AlphaBetaNodes, ERNodes int64
	Value                   game.Value
}

// Best returns the better (smaller) serial time — the denominator of
// Fishburn's speedup.
func (b SerialBaseline) Best() int64 {
	if b.AlphaBetaTime < b.ERTime {
		return b.AlphaBetaTime
	}
	return b.ERTime
}

// Baseline measures serial alpha-beta (with deep cutoffs, with the
// workload's move ordering) and serial ER on the workload.
func Baseline(w Workload, cost core.CostModel) SerialBaseline {
	var ab game.Stats
	sa := serial.Searcher{Order: w.Order, Stats: &ab}
	v := sa.AlphaBeta(w.Root, w.Depth, game.FullWindow())
	var er game.Stats
	se := serial.Searcher{Order: w.Order, Stats: &er}
	v2 := se.ER(w.Root, w.Depth, game.FullWindow())
	if v != v2 {
		panic(fmt.Sprintf("experiments: serial algorithms disagree on %s: %d vs %d", w.Name, v, v2))
	}
	abs, ers := ab.Snapshot(), er.Snapshot()
	return SerialBaseline{
		AlphaBetaTime:  cost.Of(abs),
		ERTime:         cost.Of(ers),
		AlphaBetaNodes: abs.Generated + abs.Evaluated,
		ERNodes:        ers.Generated + ers.Evaluated,
		Value:          v,
	}
}

// RunER simulates parallel ER on a workload with the given processor count
// and the paper's configuration (all speculation mechanisms on).
func RunER(w Workload, workers int, cost core.CostModel) core.Result {
	opt := core.DefaultOptions()
	opt.Workers = workers
	opt.SerialDepth = w.SerialDepth
	opt.Order = w.Order
	return mustSim(w.Root, w.Depth, opt, cost)
}

// mustSim runs the simulator and panics on error: experiment workloads
// search full windows without cancellation, so a failed run is an internal
// invariant violation, not a recoverable condition.
func mustSim(pos game.Position, depth int, opt core.Options, cost core.CostModel) core.Result {
	res, err := core.Simulate(pos, depth, opt, cost)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// EfficiencyFigure computes one curve of Figure 10 (Othello) or Figure 11
// (random trees): ER efficiency versus processor count, plus the flat
// "efficiency of serial alpha-beta" reference the paper draws.
func EfficiencyFigure(w Workload, cost core.CostModel, workers []int) (er metrics.Series, serialAB metrics.Series, base SerialBaseline) {
	base = Baseline(w, cost)
	er = metrics.Series{Name: w.Name}
	serialAB = metrics.Series{Name: w.Name + "/ab"}
	for _, p := range workers {
		res := RunER(w, p, cost)
		if res.Value != base.Value {
			panic(fmt.Sprintf("experiments: parallel ER disagrees on %s at P=%d: %d vs %d",
				w.Name, p, res.Value, base.Value))
		}
		er.Points = append(er.Points, metrics.Point{
			Workers:    p,
			Speedup:    metrics.Speedup(base.Best(), res.VirtualTime),
			Efficiency: metrics.Efficiency(base.Best(), res.VirtualTime, p),
			Time:       res.VirtualTime,
			Nodes:      res.Stats.Generated + res.Stats.Evaluated,
		})
		serialAB.Points = append(serialAB.Points, metrics.Point{
			Workers:    p,
			Speedup:    metrics.Speedup(base.Best(), base.AlphaBetaTime),
			Efficiency: metrics.Speedup(base.Best(), base.AlphaBetaTime),
			Time:       base.AlphaBetaTime,
			Nodes:      base.AlphaBetaNodes,
		})
	}
	return er, serialAB, base
}

// NodesFigure computes one group of Figure 12/13: nodes examined by serial
// alpha-beta and by ER at each processor count.
func NodesFigure(w Workload, cost core.CostModel, workers []int) (er metrics.Series, ab metrics.Series) {
	base := Baseline(w, cost)
	er = metrics.Series{Name: w.Name}
	ab = metrics.Series{Name: w.Name + "/ab"}
	for _, p := range workers {
		res := RunER(w, p, cost)
		er.Points = append(er.Points, metrics.Point{
			Workers: p,
			Nodes:   res.Stats.Generated + res.Stats.Evaluated,
			Time:    res.VirtualTime,
		})
		ab.Points = append(ab.Points, metrics.Point{Workers: p, Nodes: base.AlphaBetaNodes, Time: base.AlphaBetaTime})
	}
	return er, ab
}
