package experiments

import (
	"testing"

	"ertree/internal/core"
)

var quickCost = core.DefaultCostModel()

func TestTable3Definitions(t *testing.T) {
	ws := Table3()
	if len(ws) != 6 {
		t.Fatalf("Table 3 has %d workloads, want 6", len(ws))
	}
	wants := map[string]struct{ depth, serial int }{
		"R1": {10, 7}, "R2": {11, 7}, "R3": {7, 5},
		"O1": {7, 5}, "O2": {7, 5}, "O3": {7, 5},
	}
	for _, w := range ws {
		want, ok := wants[w.Name]
		if !ok {
			t.Errorf("unexpected workload %q", w.Name)
			continue
		}
		if w.Depth != want.depth || w.SerialDepth != want.serial {
			t.Errorf("%s: depth %d/%d, want %d/%d",
				w.Name, w.Depth, w.SerialDepth, want.depth, want.serial)
		}
		if w.Kind == "othello" && w.Order == nil {
			t.Errorf("%s: Othello workloads sort children (paper §7)", w.Name)
		}
		if w.Kind == "random" && w.Order != nil {
			t.Errorf("%s: random workloads are unsorted", w.Name)
		}
	}
}

func TestBaselineAndFigureOnSmallWorkloads(t *testing.T) {
	for _, w := range Small() {
		base := Baseline(w, quickCost)
		if base.AlphaBetaTime <= 0 || base.ERTime <= 0 {
			t.Fatalf("%s: zero baseline costs", w.Name)
		}
		if base.Best() > base.AlphaBetaTime || base.Best() > base.ERTime {
			t.Fatalf("%s: Best() is not the minimum", w.Name)
		}
		er, ab, b2 := EfficiencyFigure(w, quickCost, []int{1, 2, 4})
		if b2.Value != base.Value {
			t.Fatalf("%s: baseline value changed between runs", w.Name)
		}
		if len(er.Points) != 3 || len(ab.Points) != 3 {
			t.Fatalf("%s: wrong point counts", w.Name)
		}
		if er.Points[0].Workers != 1 || er.Points[0].Efficiency <= 0 {
			t.Fatalf("%s: bad P=1 point %+v", w.Name, er.Points[0])
		}
		// Parallel time must not increase with more processors on these
		// small but nontrivial workloads.
		if er.Points[2].Time > er.Points[0].Time {
			t.Errorf("%s: P=4 slower than P=1 (%d > %d)",
				w.Name, er.Points[2].Time, er.Points[0].Time)
		}
		// The serial alpha-beta reference line is flat.
		if ab.Points[0].Efficiency != ab.Points[2].Efficiency {
			t.Errorf("%s: alpha-beta reference line not flat", w.Name)
		}
	}
}

func TestNodesFigureMonotoneAxes(t *testing.T) {
	w := Small()[0]
	er, ab := NodesFigure(w, quickCost, []int{1, 4})
	if er.Points[1].Nodes < er.Points[0].Nodes {
		t.Logf("note: acceleration anomaly (fewer nodes at P=4)")
	}
	if ab.Points[0].Nodes != ab.Points[1].Nodes {
		t.Fatalf("alpha-beta node count must not depend on P")
	}
}

func TestE1AspirationShape(t *testing.T) {
	w := Small()[0]
	s := E1Aspiration(w, quickCost, []int{1, 2, 4, 8})
	if len(s.Points) != 4 {
		t.Fatalf("points %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Speedup <= 0 {
			t.Fatalf("non-positive speedup at P=%d", p.Workers)
		}
		if p.Speedup > 8 {
			t.Fatalf("aspiration speedup %f implausible", p.Speedup)
		}
	}
}

func TestE2MWFShape(t *testing.T) {
	for _, w := range AklWorkloads() {
		s := E2MWF(w, quickCost, []int{1, 4})
		if s.Points[1].Time > s.Points[0].Time {
			t.Errorf("%s: MWF slower at P=4 than P=1", w.Name)
		}
	}
}

func TestE3TreeSplitShape(t *testing.T) {
	ts, pv := E3TreeSplit(quickCost, []int{0, 1, 2})
	if len(ts.Points) != 3 || len(pv.Points) != 3 {
		t.Fatalf("point counts %d/%d", len(ts.Points), len(pv.Points))
	}
	if ts.Points[0].Workers != 1 || ts.Points[2].Workers != 4 {
		t.Fatalf("processor axis wrong: %+v", ts.Points)
	}
	// Efficiency must decay with k for tree-splitting on an ordered tree.
	if ts.Points[2].Efficiency >= ts.Points[0].Efficiency {
		t.Errorf("tree-splitting efficiency did not decay: %+v", ts.Points)
	}
}

func TestA1AblationRunsAllConfigs(t *testing.T) {
	w := Small()[1]
	out := A1Ablation(w, 8, quickCost)
	if len(out) != len(AblationConfigs()) {
		t.Fatalf("got %d configs", len(out))
	}
	var full, none int64
	for _, s := range out {
		if len(s.Points) != 1 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		if s.Name == "full" {
			full = s.Points[0].Time
		}
		if s.Name == "none" {
			none = s.Points[0].Time
		}
	}
	if full >= none {
		t.Errorf("full speculation (%d) not faster than none (%d) at P=8", full, none)
	}
}

func TestA3SpecRankRunsAllPolicies(t *testing.T) {
	w := Small()[1]
	out := A3SpecRank(w, 8, quickCost)
	if len(out) != 3 {
		t.Fatalf("got %d policies", len(out))
	}
	names := map[string]bool{}
	for _, s := range out {
		names[s.Name] = true
		if s.Points[0].Time <= 0 {
			t.Fatalf("policy %s reported no time", s.Name)
		}
	}
	for _, want := range []string{"paper", "depth", "bound"} {
		if !names[want] {
			t.Errorf("missing policy %s", want)
		}
	}
}

func TestA4SelectiveSortConsistency(t *testing.T) {
	w := Small()[2] // O1 at reduced depth
	r := A4SelectiveSort(w, quickCost)
	if r.AlphaBeta <= 0 || r.AlphaBetaSelective <= 0 || r.SerialER <= 0 {
		t.Fatalf("bad costs: %+v", r)
	}
	if r.SortEvalsSelective >= r.SortEvalsFull {
		t.Errorf("selective sorting did not reduce sort evals: %d vs %d",
			r.SortEvalsSelective, r.SortEvalsFull)
	}
}

func TestA5SerialDepthSweep(t *testing.T) {
	w := Small()[0] // R1 at depth 6
	points := A5SerialDepth(w, 8, quickCost, []int{1, 3, 5})
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Time <= 0 || p.Nodes <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// Finer grain must produce more heap operations.
	if points[0].HeapOps <= points[2].HeapOps {
		t.Errorf("heap ops did not grow with finer grain: %+v", points)
	}
}

func TestA6EagerSpecRuns(t *testing.T) {
	w := Small()[0]
	points := A6EagerSpec(w, 8, quickCost)
	if len(points) != 2 || points[0].Name != "paper" || points[1].Name != "eager" {
		t.Fatalf("unexpected points: %+v", points)
	}
	for _, p := range points {
		if p.Time <= 0 || p.Efficiency <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestE3CheckersShape(t *testing.T) {
	ts, pv := E3TreeSplitCheckers(quickCost, []int{0, 2})
	if len(ts.Points) != 2 || len(pv.Points) != 2 {
		t.Fatalf("point counts %d/%d", len(ts.Points), len(pv.Points))
	}
	if ts.Points[1].Efficiency >= ts.Points[0].Efficiency {
		t.Errorf("tree-splitting efficiency did not decay on checkers: %+v", ts.Points)
	}
	if ts.Points[1].Workers != 4 {
		t.Errorf("processor axis wrong")
	}
}

func TestE0RootSplitShape(t *testing.T) {
	w := Small()[1]
	s := E0RootSplit(w, quickCost, []int{1, 4})
	if len(s.Points) != 2 {
		t.Fatalf("points %d", len(s.Points))
	}
	if s.Points[1].Efficiency >= s.Points[0].Efficiency {
		t.Errorf("root splitting efficiency did not drop with processors: %+v", s.Points)
	}
	if s.Points[1].Nodes < s.Points[0].Nodes {
		t.Errorf("root splitting nodes shrank with processors: %+v", s.Points)
	}
}
