package ertree_test

import (
	"testing"

	"ertree/internal/benchlog"
)

// TestBenchHistoryParses guards the committed BENCH_history.jsonl: every line
// must parse as a history entry with the host metadata that makes its numbers
// comparable, and the timestamps must be monotone non-decreasing — the file
// is append-only, so an out-of-order timestamp means something rewrote it.
func TestBenchHistoryParses(t *testing.T) {
	entries, err := benchlog.ReadAll("BENCH_history.jsonl")
	if err != nil {
		t.Fatalf("missing or corrupt benchmark history: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("benchmark history is empty")
	}
	for i, e := range entries {
		if e.Source == "" {
			t.Fatalf("entry %d has no source", i)
		}
		if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" {
			t.Fatalf("entry %d missing toolchain metadata: %+v", i, e)
		}
		if e.NumCPU < 1 || e.GOMAXPROCS < 1 {
			t.Fatalf("entry %d missing host metadata: %+v", i, e)
		}
		if e.At.IsZero() {
			t.Fatalf("entry %d has no timestamp", i)
		}
		if len(e.Ratios) == 0 {
			t.Fatalf("entry %d carries no headline numbers", i)
		}
		if i > 0 && e.At.Before(entries[i-1].At) {
			t.Fatalf("entry %d timestamp %v precedes entry %d's %v — history must be append-only",
				i, e.At, i-1, entries[i-1].At)
		}
	}
}
