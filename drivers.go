package ertree

import "ertree/internal/driver"

// Drivers returns the registered root-driver names, sorted: "aspiration"
// (the classic wide-window deepening loop, the default), "mtdf" (Plaat's
// null-window probe convergence against the shared transposition table), and
// "bns" (the best-first SSS*-equivalent probe order), plus any driver a
// caller registered itself.
func Drivers() []string { return driver.Names() }

// ValidDriver reports whether name is a registered root driver; servers and
// CLIs use it to reject unknown names with a message from Drivers() instead
// of silently falling back.
func ValidDriver(name string) bool { return driver.Valid(name) }
