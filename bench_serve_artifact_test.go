package ertree_test

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchServeArtifactPhases guards the committed BENCH_serve.json produced
// by cmd/erload: every phase must carry a coherent latency summary
// (p50<=p95<=p99), nonzero throughput, shed/error/cache rates in range, and
// the file must keep the host metadata that makes serving-latency numbers
// interpretable. CI's erload smoke regenerates the artifact before this runs,
// so a harness change that drops a field or emits garbage fails here.
func TestBenchServeArtifactPhases(t *testing.T) {
	raw, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatalf("missing load-test artifact: %v", err)
	}
	var art struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Scenario   string `json:"scenario"`
		Target     string `json:"target"`
		Server     struct {
			Backend  string `json:"backend"`
			Capacity int    `json:"capacity"`
		} `json:"server"`
		Phases []struct {
			Name          string  `json:"name"`
			DurationMS    int64   `json:"duration_ms"`
			Offered       int     `json:"offered"`
			Completed     int     `json:"completed"`
			ThroughputRPS float64 `json:"throughput_rps"`
			ShedRate      float64 `json:"shed_rate"`
			ErrorRate     float64 `json:"error_rate"`
			Latency       struct {
				P50 float64 `json:"p50"`
				P95 float64 `json:"p95"`
				P99 float64 `json:"p99"`
			} `json:"latency_ms"`
			Cache struct {
				HitRate float64 `json:"hit_rate"`
			} `json:"answer_cache"`
			Anomalies map[string]int64 `json:"anomalies"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}

	if art.GoVersion == "" || art.GOOS == "" || art.GOARCH == "" {
		t.Fatalf("artifact missing toolchain metadata: %+v", art)
	}
	if art.NumCPU < 1 || art.GOMAXPROCS < 1 {
		t.Fatalf("artifact missing host metadata: num_cpu=%d gomaxprocs=%d", art.NumCPU, art.GOMAXPROCS)
	}
	if art.Scenario == "" || art.Target == "" {
		t.Fatalf("artifact missing scenario/target identity: %+v", art)
	}
	if art.Server.Backend == "" || art.Server.Capacity < 1 {
		t.Fatalf("artifact missing server identity: %+v", art.Server)
	}
	warnSingleCPUArtifact(t, art.NumCPU, "latency quantiles under overload")

	if len(art.Phases) < 2 {
		t.Fatalf("artifact has %d phases, want >= 2 (a ramp needs at least two points)", len(art.Phases))
	}
	sawCacheHits := false
	for _, p := range art.Phases {
		if p.Name == "" || p.DurationMS <= 0 {
			t.Fatalf("phase missing identity: %+v", p)
		}
		if p.Offered <= 0 || p.Completed <= 0 {
			t.Fatalf("phase %q completed no load: offered=%d completed=%d", p.Name, p.Offered, p.Completed)
		}
		if p.ThroughputRPS <= 0 {
			t.Fatalf("phase %q has no throughput", p.Name)
		}
		l := p.Latency
		if !(l.P50 > 0 && l.P50 <= l.P95 && l.P95 <= l.P99) {
			t.Fatalf("phase %q latency quantiles incoherent: p50=%.3f p95=%.3f p99=%.3f", p.Name, l.P50, l.P95, l.P99)
		}
		if p.ShedRate < 0 || p.ShedRate > 1 || p.ErrorRate < 0 || p.ErrorRate > 1 {
			t.Fatalf("phase %q rates out of range: shed=%.3f err=%.3f", p.Name, p.ShedRate, p.ErrorRate)
		}
		if p.Cache.HitRate < 0 || p.Cache.HitRate > 1 {
			t.Fatalf("phase %q cache hit rate out of range: %.3f", p.Name, p.Cache.HitRate)
		}
		if p.Cache.HitRate > 0 {
			sawCacheHits = true
		}
		// Every phase carries the self-monitor's anomaly counts — an empty
		// map when nothing fired, but never absent. json.Unmarshal leaves the
		// map nil only when the key is missing from the artifact.
		if p.Anomalies == nil {
			t.Fatalf("phase %q has no anomalies field — harness ran without per-phase anomaly accounting", p.Name)
		}
		for kind, n := range p.Anomalies {
			if kind == "" || n < 1 {
				t.Fatalf("phase %q has a malformed anomaly entry %q=%d", p.Name, kind, n)
			}
		}
	}
	// The scenario always carries a duplicate-mix phase; a run where no phase
	// ever hit the answer cache means the cache or the hot set is broken.
	if !sawCacheHits {
		t.Fatalf("no phase recorded an answer-cache hit rate > 0")
	}
}
