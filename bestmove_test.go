package ertree_test

import (
	"testing"

	"ertree"
)

func TestBestMoveFindsTicTacToeWin(t *testing.T) {
	// X to move with two in a row on cells 0,1: the winning move is
	// cell 2. Children are generated in cell order over empty cells, so
	// the winning child is index 0 of the empty cells {2,5,6,7,8} minus
	// occupied... find it by score instead of hard-coding.
	b := ertree.TicTacToe()
	var ok bool
	for _, mv := range []int{0, 3, 1, 4} { // X:0, O:3, X:1, O:4 -> X threatens 2
		b, ok = b.Move(mv)
		if !ok {
			t.Fatal("setup move rejected")
		}
	}
	best, all, err := ertree.BestMove(b, 5, ertree.Config{Workers: 4, SerialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best.Score != 1 {
		t.Fatalf("best score %d, want 1 (X wins)", best.Score)
	}
	// The winning child must be the one that plays cell 2.
	kids := b.Children()
	win := kids[best.Index].(ertree.TicTacToeBoard)
	if !win.Terminal() {
		t.Fatalf("best move is not the immediate win:\n%v", win)
	}
	if len(all) != len(kids) {
		t.Fatalf("scored %d of %d moves", len(all), len(kids))
	}
}

func TestBestMoveScoutBounds(t *testing.T) {
	tr := ertree.NewRandomTree(12, 3, 5)
	root := tr.Root()
	best, all, err := ertree.BestMove(root, 5, ertree.Config{Workers: 8, SerialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	kids := root.Children()
	if len(all) != len(kids) {
		t.Fatalf("scored %d of %d moves", len(all), len(kids))
	}
	// The best move's score must be exact and equal the root value; refuted
	// moves carry fail-soft upper bounds no better than the best.
	if !best.Exact {
		t.Fatal("best move's score not exact")
	}
	if want := ertree.Negmax(root, 5); best.Score != want {
		t.Fatalf("best score %d, want %d (= root value)", best.Score, want)
	}
	for i, k := range kids {
		exact := -ertree.Negmax(k, 4)
		if all[i].Exact {
			if all[i].Score != exact {
				t.Fatalf("move %d marked exact: score %d, exact %d", i, all[i].Score, exact)
			}
			continue
		}
		if all[i].Score < exact {
			t.Fatalf("move %d bound %d below exact %d", i, all[i].Score, exact)
		}
		if all[i].Score > best.Score {
			t.Fatalf("refuted move %d bound %d exceeds best %d", i, all[i].Score, best.Score)
		}
	}
}

func TestBestMoveDegenerate(t *testing.T) {
	// Terminal position: no moves.
	full, err := ertree.ParseOthello(`
		XXXXXXXX XXXXXXXX XXXXXXXX XXXXXXXX
		OOOOOOOO OOOOOOOO OOOOOOOO OOOOOOOO`, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ertree.BestMove(full, 3, ertree.Config{}); err != ertree.ErrNoMoves {
		t.Fatalf("terminal position: err = %v, want ErrNoMoves", err)
	}
	// Depth 1: children scored statically.
	tr := ertree.NewRandomTree(5, 3, 4)
	best, all, err := ertree.BestMove(tr.Root(), 1, ertree.Config{})
	if err != nil || len(all) != 3 {
		t.Fatalf("depth-1 best move: err=%v moves=%d", err, len(all))
	}
	for i, k := range tr.Root().Children() {
		if want := -k.Value(); all[i].Score != want {
			t.Fatalf("depth-1 score %d, want %d", all[i].Score, want)
		}
	}
	if best.Score < all[0].Score {
		t.Fatal("best not maximal")
	}
}

func TestIterativeDeepeningConvergesToExact(t *testing.T) {
	tr := ertree.NewRandomTree(77, 4, 6)
	for _, delta := range []ertree.Value{0, 1, 50, 5000} {
		results := ertree.IterativeDeepening(tr.Root(), 6, delta, nil)
		if len(results) != 6 {
			t.Fatalf("delta %d: %d iterations, want 6", delta, len(results))
		}
		for i, r := range results {
			if r.Depth != i+1 {
				t.Fatalf("delta %d: depth sequence broken: %+v", delta, results)
			}
			if want := ertree.Negmax(tr.Root(), r.Depth); r.Value != want {
				t.Fatalf("delta %d depth %d: value %d, want %d", delta, r.Depth, r.Value, want)
			}
		}
	}
}

func TestIterativeDeepeningAspirationSavesWork(t *testing.T) {
	// With a sane delta, iterations mostly stay inside the window; count
	// re-searches to confirm the mechanism actually fires sometimes but
	// not always.
	tr := ertree.NewRandomTree(3, 4, 7)
	narrow := ertree.IterativeDeepening(tr.Root(), 7, 1, nil)
	total := 0
	for _, r := range narrow {
		total += r.Researches
	}
	if total == 0 {
		t.Log("note: no re-searches with delta=1 (values very stable)")
	}
	wide := ertree.IterativeDeepening(tr.Root(), 7, 0, nil)
	for i := range wide {
		if wide[i].Researches != 0 {
			t.Fatalf("full-window iterations must never re-search")
		}
		if wide[i].Value != narrow[i].Value {
			t.Fatalf("aspiration changed a value at depth %d", i+1)
		}
	}
}

func TestBestLineIsPrincipalVariation(t *testing.T) {
	tr := ertree.NewRandomTree(21, 3, 5)
	cfg := ertree.Config{Workers: 4, SerialDepth: 2}
	line, err := ertree.BestLine(tr.Root(), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(line) != 5 {
		t.Fatalf("line length %d, want 5", len(line))
	}
	// Walking the line must alternate negated values consistently with the
	// root value: score at step k equals (-1)^k * root value only when the
	// line is optimal for both sides; verify via negmax at each step.
	cur := tr.Root()
	for step, mv := range line {
		kids := cur.Children()
		if mv.Index < 0 || mv.Index >= len(kids) {
			t.Fatalf("step %d: move index %d out of range", step, mv.Index)
		}
		want := ertree.Negmax(cur, 5-step)
		if mv.Score != want {
			t.Fatalf("step %d: score %d, negmax %d", step, mv.Score, want)
		}
		cur = kids[mv.Index]
	}
}

func TestBestLineStopsAtTerminal(t *testing.T) {
	// A tic-tac-toe position one move from the end.
	b := ertree.TicTacToe()
	for _, mv := range []int{0, 3, 1, 4} {
		b, _ = b.Move(mv)
	}
	line, err := ertree.BestLine(b, 9, ertree.Config{Workers: 2, SerialDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(line) == 0 {
		t.Fatal("empty line")
	}
	if first := line[0]; first.Score != 1 {
		t.Fatalf("first move score %d, want 1 (winning)", first.Score)
	}
	// X wins immediately, so the line is exactly one move.
	if len(line) != 1 {
		t.Fatalf("line continues past the win: %v", line)
	}
}
